// Command topoview inspects the topologies the study runs on: node and
// link counts, routed path-length distribution, and static link-load
// balance under all-to-all traffic; optionally a Graphviz dump.
//
//	topoview -topo fattree -radix 12
//	topoview -topo fattree -radix 12 -dead 0,1     # failed spines
//	topoview -topo torus -w 4 -h 4 -hosts 2
//	topoview -topo karytree -k 2 -n 3 -dot out.dot
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topoview: ")

	var (
		kind  = flag.String("topo", "fattree", "fattree, mesh, torus, karytree, chain, xbar")
		radix = flag.Int("radix", 12, "fat-tree crossbar radix")
		dead  = flag.String("dead", "", "comma-separated failed spines (fattree only)")
		w     = flag.Int("w", 4, "grid width (mesh/torus)")
		h     = flag.Int("h", 4, "grid height (mesh/torus)")
		hosts = flag.Int("hosts", 1, "hosts per switch (mesh/torus/chain) or total (xbar)")
		k     = flag.Int("k", 2, "arity (karytree)")
		n     = flag.Int("n", 3, "levels (karytree) or chain length")
		dot   = flag.String("dot", "", "write a Graphviz file")
	)
	flag.Parse()

	var (
		tp  *topo.Topology
		rt  *topo.Routing
		err error
	)
	switch *kind {
	case "fattree":
		if *dead != "" {
			var spines []int
			for _, f := range strings.Split(*dead, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					log.Fatalf("bad -dead list: %v", err)
				}
				spines = append(spines, v)
			}
			tp, err = topo.FatTreeDegraded(*radix, topo.DeadSpines(spines...))
		} else {
			tp, err = topo.FatTree(*radix)
		}
	case "mesh":
		var g *topo.Grid
		g, err = topo.Mesh2D(*w, *h, *hosts)
		if err == nil {
			tp, rt = g.Topology, g.DOR()
		}
	case "torus":
		var g *topo.Grid
		g, err = topo.Torus2D(*w, *h, *hosts)
		if err == nil {
			tp, rt = g.Topology, g.DOR()
		}
	case "karytree":
		tp, err = topo.KAryNTree(*k, *n)
	case "chain":
		tp, err = topo.LinearChain(*n, *hosts)
	case "xbar":
		tp, err = topo.SingleSwitch(*hosts)
	default:
		log.Fatalf("unknown topology %q", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}
	if rt == nil {
		if rt, err = topo.ComputeLFT(tp); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("topology: %s\n", tp.Name)
	a, err := topo.Analyze(tp, rt)
	if err != nil {
		log.Fatal(err)
	}
	a.Print(os.Stdout)

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			log.Fatal(err)
		}
		if err := topo.WriteDOT(f, tp); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("graphviz -> %s\n", *dot)
	}
}
