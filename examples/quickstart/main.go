// Quickstart: the smallest end-to-end use of the library. We build a
// reduced fat-tree, let 80% of the nodes flood eight hotspots (the
// paper's silent forest of congestion trees), and compare the victims'
// throughput with the InfiniBand congestion control mechanism off and
// on.
package main

import (
	"fmt"
	"log"

	ibcc "repro"
)

func main() {
	base := ibcc.DefaultScenario(12) // 72-node fat-tree, 18 crossbars
	base.Warmup = 2 * ibcc.Millisecond
	base.Measure = 4 * ibcc.Millisecond

	fmt.Println("silent forest of congestion trees, 80% contributors / 20% victims")
	fmt.Println()

	var off, on *ibcc.Result
	for _, ccOn := range []bool{false, true} {
		s := base
		s.CCOn = ccOn
		res, err := ibcc.Run(s)
		if err != nil {
			log.Fatal(err)
		}
		state := "off"
		if ccOn {
			state = "on "
			on = res
		} else {
			off = res
		}
		fmt.Printf("  cc %s: hotspots %6.3f Gbps  victims %6.3f Gbps  total %7.1f Gbps\n",
			state, res.Summary.HotspotAvgGbps, res.Summary.NonHotspotAvgGbps,
			res.Summary.TotalGbps)
	}

	fmt.Println()
	fmt.Printf("enabling congestion control multiplied the victims' throughput by %.1fx\n",
		on.Summary.NonHotspotAvgGbps/off.Summary.NonHotspotAvgGbps)
	fmt.Printf("and the total network throughput by %.2fx,\n",
		on.Summary.TotalGbps/off.Summary.TotalGbps)
	fmt.Printf("while the hotspots kept %.0f%% of their receive rate.\n",
		100*on.Summary.HotspotAvgGbps/off.Summary.HotspotAvgGbps)
}
