// Storage: the windy-forest workload of section III-B — a cluster of
// compute nodes that exchange data with random peers while writing a
// fraction p of their traffic to a small set of storage servers (the
// hotspots). The example sweeps the storage share p and shows how the
// congestion control mechanism keeps the peer-to-peer traffic near its
// theoretical maximum while the storage servers stay saturated.
package main

import (
	"fmt"
	"log"
	"os"

	ibcc "repro"
)

func main() {
	base := ibcc.DefaultScenario(12)
	base.Warmup = 2 * ibcc.Millisecond
	base.Measure = 4 * ibcc.Millisecond

	fmt.Println("compute cluster with 8 storage servers (windy forest, 100% B nodes)")
	fmt.Println("p = fraction of each node's traffic written to storage")
	fmt.Println()

	pts, err := ibcc.RunWindySweep(base, 100, []int{10, 30, 50, 60, 70, 90})
	if err != nil {
		log.Fatal(err)
	}
	ibcc.PrintWindy(os.Stdout, "storage", 100, pts)

	best := pts[0]
	for _, pt := range pts {
		if pt.Improvement > best.Improvement {
			best = pt
		}
	}
	fmt.Println()
	fmt.Printf("peak benefit at p=%d: congestion control multiplies total cluster\n", best.P)
	fmt.Printf("throughput by %.2fx; peer traffic reaches %.0f%% of its theoretical\n",
		best.Improvement, 100*best.NonHotOn/best.TMax)
	fmt.Printf("maximum, against %.0f%% without congestion control.\n",
		100*best.NonHotOff/best.TMax)
}
