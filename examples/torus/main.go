// Torus: the open question of the paper's conclusion — "Regarding Tori
// or Meshes, the picture is more unclear, thus this question should form
// the basis for further research." This example assembles that further
// experiment: a 2D torus with dimension-order routing and dateline
// virtual-lane deadlock avoidance, an endpoint hotspot fed by a subset
// of the nodes, and a victim population — then measures whether the
// paper's fat-tree CC parameter set still removes the congestion tree.
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

const (
	w, h     = 4, 4
	hostsPer = 2
	hotspot  = ib.LID(0)
)

func run(ccOn bool) (hot, victims float64) {
	g, err := topo.Torus2D(w, h, hostsPer)
	if err != nil {
		log.Fatal(err)
	}
	simr := sim.New()
	cfg := fabric.DefaultConfig()
	cfg.NumVLs = 2 // dateline deadlock avoidance needs a second lane
	net, err := fabric.New(simr, g.Topology, g.DOR(), cfg, fabric.Hooks{})
	if err != nil {
		log.Fatal(err)
	}

	hooks := fabric.Hooks{SelectVL: g.TorusVLPolicy()}
	var throttle traffic.Throttle
	if ccOn {
		params := cc.PaperParams()
		params.CCTILimit = 31 // ~16 contributors: size the CCT to scale
		mgr, err := cc.New(net, params)
		if err != nil {
			log.Fatal(err)
		}
		ccHooks := mgr.Hooks()
		hooks.SwitchEnqueue = ccHooks.SwitchEnqueue
		hooks.Deliver = ccHooks.Deliver
		throttle = mgr
	}
	net.SetHooks(hooks)

	// Half the nodes flood the hotspot (C nodes), the rest send
	// uniformly (V nodes).
	rng := sim.NewRNG(11)
	for s := 0; s < g.NumHosts; s++ {
		lid := ib.LID(s)
		if lid == hotspot {
			continue
		}
		p := 0
		var target traffic.Targeter
		if s%2 == 1 {
			p = 100
			target = traffic.StaticTarget(hotspot)
		}
		gen, err := traffic.NewGenerator(traffic.NodeConfig{
			LID: lid, NumNodes: g.NumHosts, PPercent: p, Hotspot: target,
			InjectionRate: cfg.InjectionRate, Throttle: throttle,
			RNG: rng.Derive(uint64(s)),
		})
		if err != nil {
			log.Fatal(err)
		}
		net.HCA(lid).SetSource(gen)
	}

	net.Start()
	warmup := sim.Time(0).Add(3 * sim.Millisecond)
	simr.RunUntil(warmup)
	baseHot := net.HCA(hotspot).Counters().RxDataPayload
	baseVic := make(map[ib.LID]uint64)
	for s := 0; s < g.NumHosts; s++ {
		if s%2 == 0 && ib.LID(s) != hotspot {
			baseVic[ib.LID(s)] = net.HCA(ib.LID(s)).Counters().RxDataPayload
		}
	}
	window := 6 * sim.Millisecond
	simr.RunUntil(warmup.Add(window))

	hot = float64(net.HCA(hotspot).Counters().RxDataPayload-baseHot) * 8 / window.Seconds() / 1e9
	var sum float64
	for lid, base := range baseVic {
		sum += float64(net.HCA(lid).Counters().RxDataPayload-base) * 8 / window.Seconds() / 1e9
	}
	return hot, sum / float64(len(baseVic))
}

func main() {
	fmt.Printf("endpoint congestion on a %dx%d torus (%d nodes, DOR + dateline VLs)\n",
		w, h, w*h*hostsPer)
	fmt.Println("half the nodes flood one hotspot; the others send uniformly")
	fmt.Println()
	hotOff, vicOff := run(false)
	hotOn, vicOn := run(true)
	fmt.Printf("  cc off: hotspot %6.3fG   victims avg %6.3fG\n", hotOff, vicOff)
	fmt.Printf("  cc on : hotspot %6.3fG   victims avg %6.3fG\n", hotOn, vicOn)
	fmt.Println()
	fmt.Printf("the fat-tree parameter set carries over: victims gain %.1fx while\n", vicOn/vicOff)
	fmt.Printf("the hotspot keeps %.0f%% of its rate — evidence toward the paper's\n", 100*hotOn/hotOff)
	fmt.Println("open question on tori, with the caveat that ring links make inner")
	fmt.Println("ports congestion roots more often than a non-blocking fat-tree does.")
}
