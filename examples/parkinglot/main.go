// Parkinglot: the fairness problem that motivated the authors' earlier
// hardware study ([7] in the paper). Four senders at increasing distance
// from a common destination share a chain of switches; hop-by-hop
// round-robin arbitration gives the closest sender half the bottleneck,
// the next a quarter, and so on. Congestion control at the QP level
// throttles every contributor to its fair share and solves the parking
// lot problem.
//
// This example drives the library's lower layers directly (topology,
// fabric, congestion control, generators) rather than the scenario
// facade, showing how custom experiments are assembled.
package main

import (
	"fmt"
	"log"

	"repro/internal/cc"
	"repro/internal/fabric"
	"repro/internal/ib"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func run(ccOn bool) []float64 {
	// Chain of 4 crossbars with 2 hosts each; host 7 on the last
	// switch is the common destination.
	tp, err := topo.LinearChain(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	lft, err := topo.ComputeLFT(tp)
	if err != nil {
		log.Fatal(err)
	}
	simr := sim.New()
	net, err := fabric.New(simr, tp, lft, fabric.DefaultConfig(), fabric.Hooks{})
	if err != nil {
		log.Fatal(err)
	}

	var throttle traffic.Throttle
	if ccOn {
		params := cc.PaperParams()
		params.CCTILimit = 15 // four contributors: a small CCT suffices
		mgr, err := cc.New(net, params)
		if err != nil {
			log.Fatal(err)
		}
		net.SetHooks(mgr.Hooks())
		throttle = mgr
	}

	senders := []ib.LID{0, 2, 4, 6} // 3, 2, 1 and 0 switch-hops from dst
	const dst = ib.LID(7)
	rng := sim.NewRNG(7)
	for _, s := range senders {
		gen, err := traffic.NewGenerator(traffic.NodeConfig{
			LID:           s,
			NumNodes:      tp.NumHosts,
			PPercent:      100,
			Hotspot:       traffic.StaticTarget(dst),
			InjectionRate: ib.DefaultInjectionRate(),
			Throttle:      throttle,
			RNG:           rng.Derive(uint64(s)),
		})
		if err != nil {
			log.Fatal(err)
		}
		net.HCA(s).SetSource(gen)
	}

	net.Start()
	warmup := sim.Time(0).Add(4 * sim.Millisecond)
	simr.RunUntil(warmup)
	base := make([]uint64, len(senders))
	for i, s := range senders {
		base[i] = net.HCA(s).Counters().TxDataPayload
	}
	window := 8 * sim.Millisecond
	simr.RunUntil(warmup.Add(window))

	rates := make([]float64, len(senders))
	for i, s := range senders {
		sent := net.HCA(s).Counters().TxDataPayload - base[i]
		rates[i] = float64(sent) * 8 / window.Seconds() / 1e9
	}
	return rates
}

// jain computes Jain's fairness index: 1.0 is perfectly fair, 1/n is
// maximally unfair.
func jain(rates []float64) float64 {
	var sum, sq float64
	for _, r := range rates {
		sum += r
		sq += r * r
	}
	return sum * sum / (float64(len(rates)) * sq)
}

func main() {
	fmt.Println("the parking lot problem: 4 senders, 3/2/1/0 hops from one destination")
	fmt.Println()
	labels := []string{"3 hops", "2 hops", "1 hop ", "0 hops"}
	for _, ccOn := range []bool{false, true} {
		rates := run(ccOn)
		state := "off"
		if ccOn {
			state = "on "
		}
		fmt.Printf("  cc %s:", state)
		var total float64
		for i, r := range rates {
			fmt.Printf("  %s %6.3fG", labels[i], r)
			total += r
		}
		fmt.Printf("   total %6.3fG  fairness %.3f\n", total, jain(rates))
	}
	fmt.Println()
	fmt.Println("without CC, round-robin arbitration halves the rate per extra hop;")
	fmt.Println("with CC every contributor converges to its fair bottleneck share.")
}
