// Cloud: the moving-forest workload of section III-C — a cluster running
// changing virtual jobs whose communication pattern is unknown and
// shifts over time. Each contributor subset refocuses on a fresh random
// hotspot every lifetime; as lifetimes shrink the traffic becomes a
// storm of short-lived congestion trees. The example shows the paper's
// conclusion: congestion control keeps helping as the pattern becomes
// more dynamic, but its advantage shrinks because the churn itself
// relieves congestion.
package main

import (
	"fmt"
	"log"

	ibcc "repro"
)

func main() {
	base := ibcc.DefaultScenario(12)
	base.Warmup = 2 * ibcc.Millisecond
	base.Measure = 6 * ibcc.Millisecond
	base.FracBPct = 100
	base.PPercent = 60

	fmt.Println("virtualized cluster (moving windy forest, 100% B nodes, p=60)")
	fmt.Println("hotspots move to random nodes every lifetime")
	fmt.Println()
	fmt.Printf("  %10s  %10s  %10s  %7s\n", "lifetime", "cc off", "cc on", "gain")

	lifetimes := []ibcc.Duration{
		2 * ibcc.Millisecond,
		1 * ibcc.Millisecond,
		500 * ibcc.Microsecond,
		250 * ibcc.Microsecond,
	}
	pts, err := ibcc.RunMovingSweep(base, lifetimes)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range pts {
		fmt.Printf("  %10v  %9.3fG  %9.3fG  %6.2fx\n",
			pt.Lifetime, pt.AllOff, pt.AllOn, pt.AllOn/pt.AllOff)
	}

	fmt.Println()
	fmt.Println("as the hotspot lifetime shrinks, raw throughput rises (the churn")
	fmt.Println("spreads load by itself) and the advantage of congestion control")
	fmt.Println("narrows — yet it does not hurt, matching the paper's conclusion.")
}
